//! The fused de-quantization + GEMM "kernel" (paper §3.3, Appendix D).
//!
//! This reproduces the *functional* contract of the CUDA kernel — packed
//! INT3 weights in, FP16 activations in, FP32-accumulated output out —
//! including its validation rules (Appendix D error-handling tests):
//!
//! 1. the quantization group size must be 64;
//! 2. the weight shape `(k, n)` must be a multiple of the tile shape;
//! 3. the tile shape must be one of `(256,64)`, `(128,128)`, `(64,256)`.
//!
//! Batches that are not a multiple of 16 are padded to the Tensor-Core
//! `16×8×16` granularity internally (Appendix D boundary test 1), and the
//! tiled reduction loop terminates early when the reduction dimension is
//! not a multiple of `4 × tile_k` (boundary test 2) — both without
//! affecting results.
//!
//! Execution mirrors the kernel's threadblock decomposition literally:
//! each `n`-tile is an independent task on the
//! [`milo_tensor::pool`] scoped thread pool, owns a contiguous strip of
//! the (column-major) accumulator, and de-quantizes its weight strips
//! into a thread-local tile buffer. Within a tile the `k`-tile order and
//! the per-element FP32 reduction order match the serial code exactly,
//! so the output is bit-identical at every `MILO_THREADS` setting. The
//! batch is still *padded* to the granule for validation semantics, but
//! the MAC loops only visit real rows (padded rows are known-zero).

use crate::matrix::PackedWeight;
#[cfg(test)]
use crate::matrix::PackedMatrix;
use crate::{PackError, Result};
use milo_tensor::{pool, F16, Matrix};

/// Tensor-Core batch granularity: batches are padded to a multiple of
/// this (Appendix D boundary case 1).
pub const BATCH_GRANULE: usize = 16;

/// The tile shapes the kernel supports (paper §3.3 "MoE-specific tile
/// shape tuning"). The first dimension tiles the reduction (`k`) axis,
/// the second the output (`n`) axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileShape {
    /// 256×64: few output tiles, long reduction — fewest global
    /// reductions along `n`.
    T256x64,
    /// 128×128: the balanced default.
    T128x128,
    /// 64×256: wide output tiles — fewest synchronizations along `k`.
    T64x256,
}

impl TileShape {
    /// `(tile_k, tile_n)` dimensions.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            TileShape::T256x64 => (256, 64),
            TileShape::T128x128 => (128, 128),
            TileShape::T64x256 => (64, 256),
        }
    }

    /// All supported tile shapes, for tuning sweeps.
    pub fn all() -> [TileShape; 3] {
        [TileShape::T256x64, TileShape::T128x128, TileShape::T64x256]
    }
}

/// The W3A16 GEMM kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmKernel {
    /// Tile shape used for the blocked loops and validated against the
    /// weight shape.
    pub tile: TileShape,
}

impl Default for GemmKernel {
    fn default() -> Self {
        Self { tile: TileShape::T128x128 }
    }
}

impl GemmKernel {
    /// Validates a launch against the Appendix D rules.
    ///
    /// # Errors
    ///
    /// Returns [`PackError::Unsupported`] for a group size other than 64
    /// and [`PackError::InvalidShape`] when `(k, n)` is not a multiple of
    /// the tile shape or the batch is zero.
    pub fn validate(&self, batch: usize, w: &impl PackedWeight) -> Result<()> {
        if w.group_size() != 64 {
            return Err(PackError::Unsupported(format!(
                "kernel requires group size 64, got {}",
                w.group_size()
            )));
        }
        let (tile_k, tile_n) = self.tile.dims();
        let (n, k) = (w.rows(), w.cols());
        if k % tile_k != 0 || n % tile_n != 0 {
            return Err(PackError::InvalidShape(format!(
                "weight shape (k={k}, n={n}) is not a multiple of tile ({tile_k}, {tile_n})"
            )));
        }
        if batch == 0 {
            return Err(PackError::InvalidShape("batch must be at least 1".into()));
        }
        Ok(())
    }

    /// Fused packed GEMM: `out = x · Wᵗ` where `x` is `batch × k` FP16
    /// activations (given as f32, rounded to FP16 internally — W3A16) and
    /// `W` is the packed `n × k` weight. Accumulation is FP32, matching
    /// Tensor-Core behaviour.
    ///
    /// # Errors
    ///
    /// Propagates [`GemmKernel::validate`] failures and shape mismatches.
    pub fn gemm(&self, x: &Matrix, w: &impl PackedWeight) -> Result<Matrix> {
        self.validate(x.rows(), w)?;
        if x.cols() != w.cols() {
            return Err(PackError::InvalidShape(format!(
                "activation width {} does not match k={}",
                x.cols(),
                w.cols()
            )));
        }
        let batch = x.rows();
        let (k, n) = (w.cols(), w.rows());
        let (tile_k, tile_n) = self.tile.dims();

        // Pad the batch to the Tensor-Core granule. Padded rows are
        // known-zero and dropped from the output, so only the `batch`
        // real rows are converted or multiplied — at batch=1 the old
        // MAC-over-all-16-padded-rows loop was 16× wasted multiplies.
        let padded_batch = batch.div_ceil(BATCH_GRANULE) * BATCH_GRANULE;
        let mut x16 = vec![F16::ZERO; padded_batch * k];
        for b in 0..batch {
            for (j, &v) in x.row(b).iter().enumerate() {
                x16[b * k + j] = F16::from_f32(v);
            }
        }
        let x16 = &x16;

        // Output accumulator in n-major order (`acc[o * batch + b]`) so
        // every n-tile owns one contiguous strip — the threadblock
        // decomposition becomes a lock-free parallel loop. Each tile
        // de-quantizes its weight strips into a thread-local buffer and
        // keeps the per-element k-tile reduction order sequential, so
        // results are bit-identical across thread counts.
        let _span = milo_obs::span(|| "pack.gemm.fused".into());
        let telemetry = milo_obs::enabled();
        let mut acc = vec![0.0f32; n * batch];
        pool::parallel_chunks_mut(&mut acc, tile_n * batch, |tile_idx, strip| {
            let n0 = tile_idx * tile_n;
            let mut wtile = vec![F16::ZERO; tile_k]; // thread-local dequant strip
            // Dequant-vs-MAC split, accumulated locally per tile and
            // flushed once (two counter touches per tile, not per strip).
            let (mut dequant_ns, mut mac_ns) = (0u64, 0u64);
            for k0 in (0..k).step_by(tile_k) {
                for oo in 0..tile_n {
                    let o = n0 + oo;
                    let t0 = telemetry.then(std::time::Instant::now);
                    // Dequantize the k-strip of output row o straight
                    // into the tile buffer via the packed group path.
                    for (gi, g) in ((k0 / 32)..((k0 + tile_k) / 32)).enumerate() {
                        w.dequant_group32_into(o, g, &mut wtile[gi * 32..gi * 32 + 32]);
                    }
                    let t1 = telemetry.then(std::time::Instant::now);
                    for (b, out) in strip[oo * batch..(oo + 1) * batch].iter_mut().enumerate()
                    {
                        let xrow = &x16[b * k + k0..b * k + k0 + tile_k];
                        let mut sum = 0.0f32;
                        for (xv, wv) in xrow.iter().zip(&wtile) {
                            sum += xv.to_f32() * wv.to_f32();
                        }
                        *out += sum;
                    }
                    if let (Some(t0), Some(t1)) = (t0, t1) {
                        dequant_ns += (t1 - t0).as_nanos() as u64;
                        mac_ns += t1.elapsed().as_nanos() as u64;
                    }
                }
            }
            if telemetry {
                milo_obs::counter_add("pack.gemm.dequant_ns", dequant_ns);
                milo_obs::counter_add("pack.gemm.mac_ns", mac_ns);
            }
        });

        let mut out = Matrix::zeros(batch, n);
        for b in 0..batch {
            for (o, row_v) in out.row_mut(b).iter_mut().enumerate() {
                *row_v = acc[o * batch + b];
            }
        }
        Ok(out)
    }

    /// The unfused reference path ("MiLo Dequant + CUTLASS" in Fig. 9):
    /// de-quantize the whole weight to a dense FP16 buffer first, then
    /// run a plain GEMM over it.
    ///
    /// # Errors
    ///
    /// Same validation as [`GemmKernel::gemm`].
    pub fn gemm_unfused(&self, x: &Matrix, w: &impl PackedWeight) -> Result<Matrix> {
        self.validate(x.rows(), w)?;
        if x.cols() != w.cols() {
            return Err(PackError::InvalidShape(format!(
                "activation width {} does not match k={}",
                x.cols(),
                w.cols()
            )));
        }
        let _span = milo_obs::span(|| "pack.gemm.unfused".into());
        let dense = w.dequantize_dense(); // n × k, already rounded through FP16
        let batch = x.rows();
        let (k, n) = (w.cols(), w.rows());
        let (_, tile_n) = self.tile.dims();

        // Round the activations through FP16 once (W3A16 semantics) and
        // parallelize over the same n-tiles as the fused path, each tile
        // owning a contiguous strip of the n-major accumulator.
        let mut x16 = vec![F16::ZERO; batch * k];
        for b in 0..batch {
            for (j, &v) in x.row(b).iter().enumerate() {
                x16[b * k + j] = F16::from_f32(v);
            }
        }
        let x16 = &x16;
        let dense = &dense;

        let mut acc = vec![0.0f32; n * batch];
        pool::parallel_chunks_mut(&mut acc, tile_n * batch, |tile_idx, strip| {
            let n0 = tile_idx * tile_n;
            for oo in 0..tile_n {
                let wrow = dense.row(n0 + oo);
                for (b, out) in strip[oo * batch..(oo + 1) * batch].iter_mut().enumerate() {
                    let mut sum = 0.0f32;
                    for j in 0..k {
                        sum += x16[b * k + j].to_f32() * wrow[j];
                    }
                    *out = sum;
                }
            }
        });

        let mut out = Matrix::zeros(batch, n);
        for b in 0..batch {
            for (o, row_v) in out.row_mut(b).iter_mut().enumerate() {
                *row_v = acc[o * batch + b];
            }
        }
        Ok(out)
    }
}

/// FP32 reference GEMM `x · Wᵗ` against a dense weight, used as the
/// ground truth in correctness tests (Appendix D's 0.005 relative-error
/// criterion is measured against this).
pub fn reference_gemm(x: &Matrix, w_dense: &Matrix) -> Matrix {
    let batch = x.rows();
    let n = w_dense.rows();
    let k = w_dense.cols();
    assert_eq!(x.cols(), k, "reference shapes must agree");
    let mut out = Matrix::zeros(batch, n);
    for b in 0..batch {
        let xrow = x.row(b);
        for o in 0..n {
            let wrow = w_dense.row(o);
            let mut sum = 0.0f64;
            for j in 0..k {
                sum += xrow[j] as f64 * wrow[j] as f64;
            }
            out[(b, o)] = sum as f32;
        }
    }
    out
}

/// Relative Frobenius error between a kernel output and the reference.
pub fn relative_error(out: &Matrix, reference: &Matrix) -> f32 {
    let denom = reference.frobenius_norm().max(1e-12);
    out.sub(reference).expect("shapes agree").frobenius_norm() / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_quant::{rtn_quantize, QuantConfig};
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;

    fn setup(batch: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix, PackedMatrix) {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(n, k, &mut rng);
        let x = WeightDist::Gaussian { std: 1.0 }.sample_matrix(batch, k, &mut rng);
        let q = rtn_quantize(&w, &QuantConfig::int3_asym()).unwrap();
        let packed = PackedMatrix::pack(&q).unwrap();
        (x, q.dequantize(), packed)
    }

    #[test]
    fn fused_matches_reference_within_criterion() {
        let (x, dense, packed) = setup(4, 128, 128, 1);
        let kernel = GemmKernel { tile: TileShape::T128x128 };
        let out = kernel.gemm(&x, &packed).unwrap();
        let reference = reference_gemm(&x, &dense);
        assert!(
            relative_error(&out, &reference) < 0.005,
            "relative error {} exceeds Appendix D criterion",
            relative_error(&out, &reference)
        );
    }

    #[test]
    fn fused_and_unfused_agree() {
        let (x, _, packed) = setup(8, 128, 128, 2);
        let kernel = GemmKernel::default();
        let fused = kernel.gemm(&x, &packed).unwrap();
        let unfused = kernel.gemm_unfused(&x, &packed).unwrap();
        assert!(relative_error(&fused, &unfused) < 1e-5);
    }

    #[test]
    fn all_tile_shapes_give_same_result() {
        let (x, _, packed) = setup(4, 256, 256, 3);
        let mut outputs = Vec::new();
        for tile in TileShape::all() {
            outputs.push(GemmKernel { tile }.gemm(&x, &packed).unwrap());
        }
        for o in &outputs[1..] {
            assert!(relative_error(o, &outputs[0]) < 1e-6);
        }
    }

    #[test]
    fn batch_not_multiple_of_16_is_padded_correctly() {
        // Appendix D boundary case: batch 1, 5, 17 vs the same rows inside
        // a multiple-of-16 batch.
        let (x, _, packed) = setup(17, 128, 128, 4);
        let kernel = GemmKernel::default();
        let full = kernel.gemm(&x, &packed).unwrap();
        let first = x.submatrix(0, 5, 0, x.cols());
        let part = kernel.gemm(&first, &packed).unwrap();
        for b in 0..5 {
            for o in 0..128 {
                assert_eq!(full[(b, o)], part[(b, o)]);
            }
        }
    }

    #[test]
    fn group_size_other_than_64_rejected() {
        use milo_quant::Scheme;
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(5);
        let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(128, 128, &mut rng);
        let cfg = QuantConfig::new(3, 32, Scheme::Asymmetric).unwrap();
        let q = rtn_quantize(&w, &cfg).unwrap();
        let packed = PackedMatrix::pack(&q).unwrap();
        let x = Matrix::zeros(1, 128);
        assert!(matches!(
            GemmKernel::default().gemm(&x, &packed),
            Err(PackError::Unsupported(_))
        ));
    }

    #[test]
    fn non_tile_multiple_shape_rejected() {
        let (x, _, packed) = setup(1, 128, 128, 6);
        // (k=128, n=128) is not a multiple of (256, 64) along k.
        assert!(matches!(
            GemmKernel { tile: TileShape::T256x64 }.gemm(&x, &packed),
            Err(PackError::InvalidShape(_))
        ));
    }

    #[test]
    fn zero_batch_rejected() {
        let (_, _, packed) = setup(1, 128, 128, 7);
        let x = Matrix::zeros(0, 128);
        assert!(GemmKernel::default().gemm(&x, &packed).is_err());
    }

    #[test]
    fn mismatched_activation_width_rejected() {
        let (_, _, packed) = setup(1, 128, 128, 8);
        let x = Matrix::zeros(1, 64);
        assert!(GemmKernel::default().gemm(&x, &packed).is_err());
    }

    #[test]
    fn parallel_gemm_is_bit_identical_across_thread_counts() {
        use milo_tensor::pool;
        // Batches hitting both padding regimes (1, 5 padded to 16; 16
        // exact; 17 padded to 32) and both kernel paths.
        for batch in [1usize, 5, 16, 17] {
            let (x, _, packed) = setup(batch, 256, 256, 21);
            let kernel = GemmKernel::default();
            let serial = pool::with_threads(1, || kernel.gemm(&x, &packed).unwrap());
            let serial_unfused =
                pool::with_threads(1, || kernel.gemm_unfused(&x, &packed).unwrap());
            for t in [2, 4, 7] {
                let par = pool::with_threads(t, || kernel.gemm(&x, &packed).unwrap());
                assert_eq!(par.as_slice(), serial.as_slice(), "fused batch={batch} t={t}");
                let par_unfused =
                    pool::with_threads(t, || kernel.gemm_unfused(&x, &packed).unwrap());
                assert_eq!(
                    par_unfused.as_slice(),
                    serial_unfused.as_slice(),
                    "unfused batch={batch} t={t}"
                );
            }
        }
    }

    #[test]
    fn parallel_gemm_identical_for_every_tile_shape() {
        use milo_tensor::pool;
        let (x, _, packed) = setup(4, 256, 256, 22);
        for tile in TileShape::all() {
            let kernel = GemmKernel { tile };
            let serial = pool::with_threads(1, || kernel.gemm(&x, &packed).unwrap());
            let par = pool::with_threads(4, || kernel.gemm(&x, &packed).unwrap());
            assert_eq!(par.as_slice(), serial.as_slice(), "{tile:?}");
        }
    }

    #[test]
    fn symmetric_weights_also_work() {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(9);
        let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(128, 128, &mut rng);
        let x = WeightDist::Gaussian { std: 1.0 }.sample_matrix(2, 128, &mut rng);
        let q = rtn_quantize(&w, &QuantConfig::int3_sym()).unwrap();
        let packed = PackedMatrix::pack(&q).unwrap();
        let out = GemmKernel::default().gemm(&x, &packed).unwrap();
        let reference = reference_gemm(&x, &q.dequantize());
        assert!(relative_error(&out, &reference) < 0.005);
    }
}
