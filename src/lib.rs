//! # MiLo — quantized MoE inference with a mixture of low-rank compensators
//!
//! This crate is the facade of the MiLo reproduction workspace. It
//! re-exports the public API of every member crate so applications can
//! depend on a single `milo` crate:
//!
//! * [`tensor`] — matrices, `f16`, RNG distributions, statistics, SVD.
//! * [`quant`] — RTN / HQQ / GPTQ quantizers and quantized tensors.
//! * [`core`] — the MiLo algorithm: iterative joint optimization of the
//!   quantized weights and the mixture of low-rank compensators, plus the
//!   adaptive rank-selection policies.
//! * [`moe`] — the Mixture-of-Experts transformer substrate with synthetic
//!   Mixtral-like and DeepSeek-like models.
//! * [`pack`] — zero-bit-waste INT3 packing, binary-manipulation
//!   dequantization, and fused packed GEMM.
//! * [`engine`] — the packed-weight inference engine (the functional
//!   analogue of the paper's MiLo serving backend).
//! * [`serve`] — the request-lifecycle serving layer: bounded admission,
//!   deadlines, retries with seeded backoff, per-expert circuit
//!   breakers, and watchdog-driven load shedding.
//! * [`gpu_sim`] — the analytical A100 performance model used to reproduce
//!   the paper's kernel throughput and end-to-end latency results.
//! * [`eval`] — the evaluation harness (perplexity, task fidelity, timing,
//!   memory accounting, report rendering).
//! * [`obs`] — the zero-dependency telemetry layer (counters, latency
//!   histograms, spans, Chrome-trace export) every other crate reports
//!   into, gated on `MILO_TELEMETRY`.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

#![warn(missing_docs)]

pub use milo_core as core;
pub use milo_engine as engine;
pub use milo_eval as eval;
pub use milo_gpu_sim as gpu_sim;
pub use milo_moe as moe;
pub use milo_obs as obs;
pub use milo_pack as pack;
pub use milo_quant as quant;
pub use milo_serve as serve;
pub use milo_tensor as tensor;
