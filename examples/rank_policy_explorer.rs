//! Rank-policy exploration: see how each adaptive policy distributes
//! compensator ranks over a DeepSeek-like model and what it costs in
//! memory — the decision the paper's §3.2.5 analyzes.
//!
//! ```bash
//! cargo run --release --example rank_policy_explorer
//! ```

use milo::core::policy::compensator_memory_bytes;
use milo::core::{LayerKind, RankPolicy, SparseAllocation};
use milo::eval::{generate_corpus, Table};
use milo::moe::{layer_tensors, profile_expert_frequency, MoeConfig, MoeModel};
use milo::quant::QuantConfig;

fn main() {
    let mut cfg = MoeConfig::deepseek_like();
    cfg.n_layers = 3;
    let model = MoeModel::synthesize(&cfg, 11);
    let corpus = generate_corpus(&model, 8, 40, 5).expect("corpus");
    let profile = profile_expert_frequency(&model, &corpus).expect("profiling");
    let tensors = layer_tensors(&model, Some(&profile));
    let metas: Vec<_> = tensors.iter().map(|t| t.meta).collect();

    let policies: Vec<(&str, RankPolicy)> = vec![
        ("Uniform-8", RankPolicy::uniform(8)),
        ("Dense-48", RankPolicy::dense_only(48)),
        ("Sparse-8", RankPolicy::sparse_only(8)),
        (
            "Dense-48 + Kurtosis-4",
            RankPolicy::composite(48, SparseAllocation::Kurtosis { avg_rank: 4 }),
        ),
        (
            "Dense-48 + Frequency-4",
            RankPolicy::composite(48, SparseAllocation::Frequency { avg_rank: 4 }),
        ),
    ];

    let mut t = Table::new([
        "policy",
        "dense ranks",
        "expert ranks (min/mean/max)",
        "compensator KB (INT3)",
    ]);
    for (name, policy) in &policies {
        let ranks = policy.assign(&metas).expect("assignment");
        let dense: Vec<usize> = ranks
            .iter()
            .zip(&metas)
            .filter(|(_, m)| m.kind.is_dense())
            .map(|(&r, _)| r)
            .collect();
        let experts: Vec<usize> = ranks
            .iter()
            .zip(&metas)
            .filter(|(_, m)| matches!(m.kind, LayerKind::Expert { .. }))
            .map(|(&r, _)| r)
            .collect();
        let mean = experts.iter().sum::<usize>() as f32 / experts.len().max(1) as f32;
        let kb = compensator_memory_bytes(&metas, &ranks, Some(&QuantConfig::int3_sym())) as f64
            / 1e3;
        t.push_row([
            name.to_string(),
            format!("{}..{}", dense.iter().min().unwrap_or(&0), dense.iter().max().unwrap_or(&0)),
            format!(
                "{}/{mean:.1}/{}",
                experts.iter().min().unwrap_or(&0),
                experts.iter().max().unwrap_or(&0)
            ),
            format!("{kb:.1}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The adaptive policies (Kurtosis/Frequency) spread the same average rank unevenly:\n\
         heavier-tailed or more-frequently-activated experts get more rank, which is where\n\
         compensation pays off most (paper Table 4)."
    );
}
