//! Quickstart: compress a single weight matrix with MiLo and run the
//! packed INT3 kernel on it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use milo::core::{milo_compress, MiloOptions};
use milo::pack::{GemmKernel, PackedMatrix};
use milo::pack::gemm::{reference_gemm, relative_error};
use milo::quant::{hqq_quantize, HqqOptions, QuantConfig};
use milo::tensor::rng::WeightDist;
use milo::tensor::stats;
use milo_tensor::rng::SeedableRng;

fn main() {
    // A heavy-tailed "attention-like" weight matrix — the kind that
    // suffers most under 3-bit quantization.
    let mut rng = milo_tensor::rng::StdRng::seed_from_u64(42);
    let w = WeightDist::StudentT { dof: 6.0, scale: 0.06 }.sample_matrix(256, 256, &mut rng);

    // Plain calibration-free HQQ at INT3, group size 64.
    let cfg = QuantConfig::int3_asym();
    let hqq = hqq_quantize(&w, &cfg, &HqqOptions::default()).expect("HQQ");
    let hqq_err = stats::relative_frobenius_error(&w, &hqq.dequantize());

    // MiLo: the same quantizer, jointly optimized with a rank-16 INT3
    // low-rank compensator (paper Algorithm 1).
    let milo = milo_compress(&w, 16, &MiloOptions::default()).expect("MiLo");
    let milo_err = stats::relative_frobenius_error(&w, &milo.effective_weight());

    println!("relative weight error  HQQ:  {hqq_err:.4}");
    println!("relative weight error  MiLo: {milo_err:.4}");
    println!(
        "memory: quantized weight {} B + compensator {} B (FP16 would be {} B)",
        milo.qweight.packed_bytes(),
        milo.compensator.as_ref().map_or(0, |c| c.memory_bytes()),
        w.len() * 2,
    );
    println!(
        "MiLo converged in {} outer iterations (eps history: {:?})",
        milo.iterations(),
        milo.convergence
    );

    // Deploy: pack the quantized weight into the zero-waste 3-bit layout
    // and run the fused dequant+GEMM "kernel".
    let packed = PackedMatrix::pack(&milo.qweight).expect("packing");
    let x = WeightDist::Gaussian { std: 1.0 }.sample_matrix(4, 256, &mut rng);
    let out = GemmKernel::default().gemm(&x, &packed).expect("packed GEMM");
    let reference = reference_gemm(&x, &milo.qweight.dequantize());
    println!(
        "packed GEMM relative error vs FP32 reference: {:.2e} (criterion: < 5e-3)",
        relative_error(&out, &reference)
    );
}
