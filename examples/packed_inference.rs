//! Packed inference: run an MoE model directly on its deployment
//! representation — packed INT3 weights through the fused kernel, with
//! compensators applied as skinny GEMMs — and verify it matches the
//! reconstructed dense model.
//!
//! ```bash
//! cargo run --release --example packed_inference
//! ```

use milo::core::{compress_model, MiloOptions, RankPolicy, SparseAllocation};
use milo::engine::PackedMoeModel;
use milo::eval::{generate_corpus, perplexity};
use milo::moe::{apply_compressed, layer_tensors, MoeConfig, MoeModel};
use milo::tensor::stats;

fn main() {
    // Dimensions chosen so every projection satisfies the kernel's tile
    // constraints (multiples of 128 along both GEMM axes).
    let mut cfg = MoeConfig::mixtral_like();
    cfg.d_model = 128;
    cfg.expert_ffn = 384;
    cfg.n_layers = 3;
    let reference = MoeModel::synthesize(&cfg, 77);

    println!("compressing with MiLo (dense-16 + uniform-4 experts)...");
    let tensors = layer_tensors(&reference, None);
    let policy = RankPolicy::composite(16, SparseAllocation::Uniform(4));
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);
    let compressed =
        compress_model(&tensors, &policy, &MiloOptions::default(), threads).expect("compress");

    let engine = PackedMoeModel::build(&reference, &compressed).expect("engine build");
    println!(
        "engine: {:.1}% of projections on the packed INT3 kernel, {:.2} MB deployed",
        100.0 * engine.packed_fraction(),
        engine.memory_bytes() as f64 / 1e6
    );

    // Numerical agreement with the reconstructed dense model.
    let dense = apply_compressed(&reference, &compressed).expect("apply");
    let tokens: Vec<u32> = (0..24).map(|i| (i * 13) % cfg.vocab as u32).collect();
    let a = engine.forward(&tokens).expect("engine forward");
    let b = dense.forward(&tokens).expect("dense forward");
    println!(
        "engine vs dense logits relative error: {:.2e}",
        stats::relative_frobenius_error(&b, &a)
    );

    // And the end metric: perplexity through the packed path.
    let corpus = generate_corpus(&reference, 6, 24, 5).expect("corpus");
    let ppl_dense = perplexity(&dense, &corpus).expect("ppl");
    let mut nll = 0.0f64;
    let mut count = 0usize;
    for seq in &corpus {
        let logits = engine.forward(seq).expect("forward");
        for i in 0..seq.len() - 1 {
            let row = logits.row(i);
            let max_l = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
            let lse: f64 =
                row.iter().map(|&l| ((l as f64) - max_l).exp()).sum::<f64>().ln() + max_l;
            nll -= row[seq[i + 1] as usize] as f64 - lse;
            count += 1;
        }
    }
    let ppl_engine = (nll / count as f64).exp();
    println!("perplexity: dense path {ppl_dense:.4}, packed engine {ppl_engine:.4}");
}
