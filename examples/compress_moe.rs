//! End-to-end MoE compression: synthesize a Mixtral-like model, profile
//! expert activation frequencies, compress it with the MiLo-s1 strategy,
//! and evaluate the compressed model against the FP16 reference.
//!
//! ```bash
//! cargo run --release --example compress_moe
//! ```

use milo::core::{compress_model, MiloOptions, RankPolicy, SparseAllocation};
use milo::eval::{generate_corpus, perplexity};
use milo::moe::{
    apply_compressed, layer_tensors, profile_expert_frequency, MoeConfig, MoeModel,
};

fn main() {
    // A scaled-down Mixtral-8x7B analogue (8 experts, top-2, SwiGLU).
    let mut cfg = MoeConfig::mixtral_like();
    cfg.n_layers = 4; // keep the example quick
    let reference = MoeModel::synthesize(&cfg, 7);
    println!(
        "model: {} ({} quantizable parameters, {:.1} MB FP16)",
        cfg.name,
        cfg.quantizable_params(),
        cfg.fp16_bytes() as f64 / 1e6
    );

    // Route a corpus through the model to measure expert usage — the
    // Frequency rank policy consumes this.
    let corpus = generate_corpus(&reference, 8, 32, 99).expect("corpus");
    let profile = profile_expert_frequency(&reference, &corpus).expect("profiling");
    println!("worst-layer expert imbalance: {:.1}x", profile.max_imbalance());

    // The MiLo-s1 strategy (paper Table 5, scaled): dense layers get a
    // large rank, experts share a kurtosis-weighted budget.
    let policy = RankPolicy::composite(32, SparseAllocation::Kurtosis { avg_rank: 4 });
    let tensors = layer_tensors(&reference, Some(&profile));
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);
    println!("compressing {} weight matrices on {threads} threads...", tensors.len());
    let compressed =
        compress_model(&tensors, &policy, &MiloOptions::default(), threads).expect("compress");

    println!(
        "compressed memory: {:.2} MB total ({:.2} MB weights + {:.2} MB compensators) — {:.1}% of FP16",
        compressed.memory_bytes() as f64 / 1e6,
        compressed.weight_bytes() as f64 / 1e6,
        compressed.compensator_bytes() as f64 / 1e6,
        100.0 * compressed.memory_bytes() as f64 / cfg.fp16_bytes() as f64,
    );

    // Evaluate: perplexity of the compressed model on the reference's
    // own samples (teacher-as-ground-truth; see DESIGN.md).
    let model = apply_compressed(&reference, &compressed).expect("apply");
    let eval_corpus = generate_corpus(&reference, 10, 32, 123).expect("eval corpus");
    let ppl_ref = perplexity(&reference, &eval_corpus).expect("ppl");
    let ppl_compressed = perplexity(&model, &eval_corpus).expect("ppl");
    println!("perplexity: FP16 {ppl_ref:.3} -> MiLo INT3 {ppl_compressed:.3}");
}
