//! Serving-latency estimation: use the analytical A100 model to compare
//! backends for a custom MoE deployment, the way the paper's Table 7
//! compares Mixtral-8×7B backends.
//!
//! ```bash
//! cargo run --release --example serving_latency
//! ```

use milo::eval::Table;
use milo::gpu_sim::{end_to_end, Backend, Device, E2eResult, ModelSpec};

fn main() {
    let dev = Device::a100_40gb();

    // Two deployments: the paper's Mixtral-8x7B and a hypothetical
    // larger fine-grained MoE.
    let mixtral = ModelSpec::mixtral_8x7b();
    let custom = ModelSpec {
        name: "Custom-128x1B".into(),
        n_layers: 24,
        d_model: 2048,
        ffn: 1408,
        n_experts: 128,
        top_k: 8,
        other_params: 2 * 32000 * 2048,
    };

    for spec in [&mixtral, &custom] {
        println!(
            "{} — {:.1}B parameters, FP16 would need {:.0} GB:",
            spec.name,
            spec.total_params() as f64 / 1e9,
            spec.total_params() as f64 * 2.0 / 1e9,
        );
        let batches = [1usize, 16, 32];
        let mut t = Table::new(
            std::iter::once("backend".to_string()).chain(batches.iter().map(|b| format!("bs={b}"))),
        );
        for backend in [Backend::PyTorchFp16, Backend::Gptq3bit, Backend::Marlin, Backend::Milo] {
            let mut row = vec![backend.name().to_string()];
            for &batch in &batches {
                row.push(match end_to_end(&dev, backend, spec, batch) {
                    E2eResult::Latency(s) => format!("{:.1} ms", s * 1e3),
                    E2eResult::OutOfMemory => "OOM".into(),
                    E2eResult::Unsupported => "-".into(),
                });
            }
            t.push_row(row);
        }
        println!("{}", t.render());
    }

    println!(
        "Reading: FP16 Mixtral does not fit a 40 GB A100 at all; the GPTQ GeMV backend \
         serves only batch 1; MiLo's W3A16 kernel is the fastest at every batch size."
    );
}
